#include "rewrite/engine.hpp"

#include <stdexcept>

#include "spl/printer.hpp"

namespace spiral::rewrite {

using spl::Builder;
using spl::Kind;

FormulaPtr with_children(const FormulaPtr& f,
                         std::vector<FormulaPtr> children) {
  switch (f->kind) {
    case Kind::kCompose:
      return Builder::compose(std::move(children));
    case Kind::kTensor:
      util::require(children.size() == 2, "tensor needs two children");
      return Builder::tensor(children[0], children[1]);
    case Kind::kDirectSum:
      return Builder::direct_sum(std::move(children));
    case Kind::kSmpTag:
      util::require(children.size() == 1, "smp tag needs one child");
      return Builder::smp(f->p, f->mu, children[0]);
    case Kind::kTensorPar:
      util::require(children.size() == 1, "tensor_par needs one child");
      return Builder::tensor_par(f->p, children[0]);
    case Kind::kDirectSumPar:
      return Builder::direct_sum_par(std::move(children));
    case Kind::kPermBar:
      util::require(children.size() == 1, "perm_bar needs one child");
      return Builder::perm_bar(children[0], f->mu);
    case Kind::kVecTag:
      util::require(children.size() == 1, "vec tag needs one child");
      return Builder::vec(f->mu, children[0]);
    case Kind::kVecTensor:
      util::require(children.size() == 1, "vec_tensor needs one child");
      return Builder::vec_tensor(children[0], f->mu);
    default:
      util::require(children.empty(), "leaf node cannot take children");
      return f;
  }
}

FormulaPtr rewrite_step(const FormulaPtr& f, const RuleSet& rules,
                        Trace* trace) {
  // Try rules at this node first (outermost).
  for (const auto& rule : rules) {
    if (FormulaPtr r = rule.try_apply(f)) {
      if (trace != nullptr) {
        trace->push_back({rule.name, spl::to_string(f), spl::to_string(r)});
      }
      return r;
    }
  }
  // Otherwise descend, leftmost child first.
  for (std::size_t i = 0; i < f->arity(); ++i) {
    if (FormulaPtr r = rewrite_step(f->child(i), rules, trace)) {
      std::vector<FormulaPtr> kids = f->children;
      kids[i] = std::move(r);
      return with_children(f, std::move(kids));
    }
  }
  return nullptr;
}

FormulaPtr rewrite_fixpoint(FormulaPtr f, const RuleSet& rules, Trace* trace,
                            int max_steps) {
  for (int step = 0; step < max_steps; ++step) {
    FormulaPtr next = rewrite_step(f, rules, trace);
    if (!next) return f;
    f = std::move(next);
  }
  throw std::runtime_error(
      "rewrite_fixpoint: rule set did not terminate within step budget");
}

}  // namespace spiral::rewrite
