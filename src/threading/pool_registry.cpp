#include "threading/pool_registry.hpp"

#include <algorithm>

namespace spiral::threading {

/// Registry internals, shared (via shared_ptr) with every outstanding
/// lease so returns stay safe regardless of destruction order: a lease
/// returning after the registry died finds the weak_ptr expired and
/// destroys its pool instead.
struct PoolLease::State {
  mutable std::mutex m;
  std::vector<std::shared_ptr<ThreadPool>> idle;  // any size, searched
  std::uint64_t acquires = 0;
  std::uint64_t reuses = 0;
  std::uint64_t created = 0;
};

void PoolLease::release() noexcept {
  if (!pool_) return;
  if (auto home = home_.lock()) {
    std::lock_guard<std::mutex> lock(home->m);
    std::size_t same_size = 0;
    for (const auto& p : home->idle) {
      if (p->size() == pool_->size()) ++same_size;
    }
    if (same_size < PoolRegistry::kMaxIdlePerSize) {
      home->idle.push_back(std::move(pool_));
    }
    // else: drop the pool (destroyed below) — idle cache is bounded.
  }
  pool_.reset();
  home_.reset();
}

PoolRegistry::PoolRegistry() : state_(std::make_shared<PoolLease::State>()) {}

PoolLease PoolRegistry::acquire(int threads) {
  util::require(threads >= 1, "PoolRegistry::acquire: threads must be >= 1");
  PoolLease lease;
  lease.home_ = state_;
  {
    std::lock_guard<std::mutex> lock(state_->m);
    ++state_->acquires;
    auto it = std::find_if(
        state_->idle.begin(), state_->idle.end(),
        [threads](const auto& p) { return p->size() == threads; });
    if (it != state_->idle.end()) {
      ++state_->reuses;
      lease.pool_ = std::move(*it);
      state_->idle.erase(it);
      return lease;
    }
    ++state_->created;
  }
  // Construction outside the lock: spawning threads is the slow path and
  // other contexts should keep acquiring meanwhile.
  lease.pool_ = std::make_shared<ThreadPool>(threads);
  return lease;
}

void PoolRegistry::trim() {
  std::vector<std::shared_ptr<ThreadPool>> doomed;
  {
    std::lock_guard<std::mutex> lock(state_->m);
    doomed.swap(state_->idle);
  }
  // Pools (and their worker threads) die outside the lock.
}

PoolRegistry::Stats PoolRegistry::stats() const {
  std::lock_guard<std::mutex> lock(state_->m);
  return {state_->acquires, state_->reuses, state_->created};
}

void PoolRegistry::reset_stats() {
  std::lock_guard<std::mutex> lock(state_->m);
  state_->acquires = state_->reuses = state_->created = 0;
}

std::size_t PoolRegistry::idle_count() const {
  std::lock_guard<std::mutex> lock(state_->m);
  return state_->idle.size();
}

PoolRegistry& global_pool_registry() {
  static PoolRegistry registry;
  return registry;
}

}  // namespace spiral::threading
