// Barriers for the thread pool.
//
// The paper attributes part of Spiral's parallel win at small sizes to
// "low-latency minimal overhead synchronization" (Section 3.2): when code
// is generated for a fixed N, p and mu, the synchronization between the
// stages of formula (14) can be a busy-wait barrier between p pinned
// threads instead of a general-purpose condition-variable barrier. Both
// implementations are provided; bench/bench_barriers.cpp measures them
// (ablation A2 in DESIGN.md).
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <new>
#include <thread>

#include "util/common.hpp"

namespace spiral::threading {

/// Cache-line size used to pad the barrier's hot atomics apart
/// (std::hardware_destructive_interference_size when the library reports
/// it, the common 64 bytes otherwise).
#if defined(__cpp_lib_hardware_interference_size)
#if defined(__GNUC__) && !defined(__clang__)
// GCC warns that this constant may vary across -mtune flags; the padding
// below only needs a safe upper bound, so the warning is noise here.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Winterference-size"
#endif
inline constexpr std::size_t kDestructiveInterferenceSize =
    std::hardware_destructive_interference_size;
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
#else
inline constexpr std::size_t kDestructiveInterferenceSize = 64;
#endif

/// Sense-reversing centralized spin barrier for a fixed set of
/// participants. wait() spins (with a CPU relax hint), falling back to
/// yield after a bounded number of spins so the library stays usable on
/// oversubscribed machines (like a 1-core CI box).
class SpinBarrier {
 public:
  explicit SpinBarrier(int participants)
      : participants_(participants), remaining_(participants) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void wait() {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last arrival: reset and release everyone.
      remaining_.store(participants_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
      return;
    }
    int spins = 0;
    while (sense_.load(std::memory_order_acquire) != my_sense) {
      if (++spins > kSpinLimit) {
        std::this_thread::yield();
      }
    }
  }

 private:
  static constexpr int kSpinLimit = 1 << 12;
  const int participants_;
  // remaining_ is hammered with fetch_sub by every arriving thread while
  // sense_ is spun on by every waiting thread; on one cache line each
  // arrival would invalidate every spinner's line (the very false-sharing
  // effect this paper's Definition 1 bans from generated code — ironic
  // that the first revision of this barrier had the bug itself). Keep
  // them a destructive-interference span apart.
  alignas(kDestructiveInterferenceSize) std::atomic<int> remaining_;
  alignas(kDestructiveInterferenceSize) std::atomic<bool> sense_{false};
};

/// Classical mutex/condition-variable barrier (the "portable library"
/// flavour whose overhead the paper's generated code avoids).
class CondVarBarrier {
 public:
  explicit CondVarBarrier(int participants) : participants_(participants) {}

  CondVarBarrier(const CondVarBarrier&) = delete;
  CondVarBarrier& operator=(const CondVarBarrier&) = delete;

  void wait() {
    std::unique_lock<std::mutex> lock(m_);
    const std::uint64_t gen = generation_;
    if (++arrived_ == participants_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != gen; });
  }

 private:
  const int participants_;
  std::mutex m_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
};

}  // namespace spiral::threading
