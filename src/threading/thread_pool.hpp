// Persistent worker-thread pool ("thread pooling" in the paper's terms).
//
// FFTW 3.1's thread pooling was experimental and off by default, so each
// parallel transform paid thread start-up cost; Spiral's generated code
// keeps p threads alive for the lifetime of the plan and dispatches the
// stages of formula (14) to them with low-latency barriers. This pool
// reproduces that execution model:
//
//   * `p-1` workers are created once (the caller is participant 0);
//   * run(fn) makes all p participants execute fn(task_id) and returns
//     when every participant has finished (barrier semantics);
//   * dispatch and completion use the sense-reversing spin barrier.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "threading/barrier.hpp"

namespace spiral::threading {

class ThreadPool {
 public:
  /// Creates a pool with `threads` total participants (>= 1). The calling
  /// thread is participant 0; `threads - 1` workers are spawned.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of participants (including the caller).
  [[nodiscard]] int size() const noexcept { return threads_; }

  /// Process-wide count of OS threads spawned by ThreadPool constructors.
  /// The pool-sharing tests assert on deltas of this counter to prove a
  /// reused pool never re-spawns its team (the cold-start the service
  /// layer exists to avoid).
  [[nodiscard]] static std::uint64_t threads_spawned() noexcept;

  /// Executes fn(task_id) for task_id in [0, size()) — one task per
  /// participant, caller runs task 0. Blocks until all tasks finished.
  /// The caller acts as participant 0, so any thread may call run() —
  /// the pool is handed between threads by the PoolRegistry — but calls
  /// must be serialized (one run() at a time) and must not be re-entered
  /// from inside a task.
  void run(const std::function<void(int)>& fn);

  /// Executes fn(i) for i in [0, count), distributing iterations over the
  /// participants in contiguous chunks (the schedule rule (7) encodes).
  void parallel_for(idx_t count, const std::function<void(idx_t)>& fn);

 private:
  void worker_loop(int id);

  const int threads_;
  SpinBarrier start_barrier_;
  SpinBarrier done_barrier_;
  const std::function<void(int)>* job_ = nullptr;  // valid between barriers
  std::atomic<bool> shutdown_{false};
  std::vector<std::thread> workers_;
};

}  // namespace spiral::threading
