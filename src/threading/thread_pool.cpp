#include "threading/thread_pool.hpp"

namespace spiral::threading {

namespace {
std::atomic<std::uint64_t> g_threads_spawned{0};
}  // namespace

std::uint64_t ThreadPool::threads_spawned() noexcept {
  return g_threads_spawned.load(std::memory_order_relaxed);
}

ThreadPool::ThreadPool(int threads)
    : threads_(threads),
      start_barrier_(threads),
      done_barrier_(threads) {
  util::require(threads >= 1, "ThreadPool requires at least one thread");
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int id = 1; id < threads; ++id) {
    workers_.emplace_back([this, id] { worker_loop(id); });
    g_threads_spawned.fetch_add(1, std::memory_order_relaxed);
  }
}

ThreadPool::~ThreadPool() {
  if (threads_ > 1) {
    shutdown_.store(true, std::memory_order_release);
    start_barrier_.wait();  // release workers into the shutdown check
    for (auto& w : workers_) w.join();
  }
}

void ThreadPool::worker_loop(int id) {
  for (;;) {
    start_barrier_.wait();
    if (shutdown_.load(std::memory_order_acquire)) return;
    (*job_)(id);
    done_barrier_.wait();
  }
}

void ThreadPool::run(const std::function<void(int)>& fn) {
  if (threads_ == 1) {
    fn(0);
    return;
  }
  job_ = &fn;
  start_barrier_.wait();  // release workers
  fn(0);                  // caller is participant 0
  done_barrier_.wait();   // wait for everyone
  job_ = nullptr;
}

void ThreadPool::parallel_for(idx_t count,
                              const std::function<void(idx_t)>& fn) {
  if (threads_ == 1 || count <= 1) {
    for (idx_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const idx_t p = threads_;
  run([&](int task) {
    // Contiguous chunks: iterations [task*count/p, (task+1)*count/p).
    const idx_t lo = static_cast<idx_t>(task) * count / p;
    const idx_t hi = (static_cast<idx_t>(task) + 1) * count / p;
    for (idx_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace spiral::threading
