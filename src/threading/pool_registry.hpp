// Shared worker-pool registry: persistent thread teams leased across
// plans, contexts and client threads.
//
// Before this registry each backend::ExecContext owned its worker pool,
// so every fresh context — a new server thread, a short-lived caller, the
// self-context a plan's convenience execute() uses — paid thread start-up
// before its first parallel transform (the very cost the paper's
// "thread pooling" is about). The registry turns pools into a shared,
// process-wide resource:
//
//   * acquire(p) leases an idle pool with exactly p participants,
//     creating one only when none is free — a context that dies returns
//     its pool, and the next context picks the warm team up without
//     spawning a single thread;
//   * a lease is exclusive: while held, no other context can run on that
//     pool, which preserves ThreadPool's one-caller-at-a-time contract;
//   * leases are destruction-order-safe: a lease that outlives the
//     registry (static teardown, leaked contexts) simply destroys its
//     pool instead of returning it.
//
// The spawn counter (ThreadPool::threads_spawned) is the observable the
// tests gate on: a second plan executing on a reused pool must show a
// delta of zero.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "threading/thread_pool.hpp"

namespace spiral::threading {

class PoolRegistry;

/// Exclusive RAII lease on a registry pool. Movable; returning the pool
/// (destruction or release()) makes it available to the next acquire().
class PoolLease {
 public:
  PoolLease() = default;
  PoolLease(PoolLease&& o) noexcept
      : pool_(std::move(o.pool_)), home_(std::move(o.home_)) {
    o.pool_.reset();
    o.home_.reset();
  }
  PoolLease& operator=(PoolLease&& o) noexcept {
    if (this != &o) {
      release();
      pool_ = std::move(o.pool_);
      home_ = std::move(o.home_);
      o.pool_.reset();
      o.home_.reset();
    }
    return *this;
  }
  PoolLease(const PoolLease&) = delete;
  PoolLease& operator=(const PoolLease&) = delete;
  ~PoolLease() { release(); }

  /// The leased pool (nullptr for an empty lease).
  [[nodiscard]] ThreadPool* pool() const noexcept { return pool_.get(); }
  explicit operator bool() const noexcept { return pool_ != nullptr; }

  /// Returns the pool to its registry's idle list (or destroys it when
  /// the registry is already gone). The lease is empty afterwards.
  void release() noexcept;

 private:
  friend class PoolRegistry;
  struct State;  // the registry internals the lease returns the pool to
  std::shared_ptr<ThreadPool> pool_;
  std::weak_ptr<State> home_;
};

class PoolRegistry {
 public:
  /// Idle pools kept per participant count; beyond this, returned pools
  /// are destroyed instead of cached (bounds idle threads when many
  /// short-lived contexts churn).
  static constexpr std::size_t kMaxIdlePerSize = 8;

  PoolRegistry();

  /// Leases a pool with exactly `threads` participants: an idle one when
  /// available (zero thread spawns), a freshly created one otherwise.
  [[nodiscard]] PoolLease acquire(int threads);

  /// Destroys all idle pools (leased pools are unaffected).
  void trim();

  struct Stats {
    std::uint64_t acquires = 0;  ///< total acquire() calls
    std::uint64_t reuses = 0;    ///< acquires served from the idle list
    std::uint64_t created = 0;   ///< pools constructed (threads spawned)
  };
  [[nodiscard]] Stats stats() const;
  void reset_stats();

  /// Idle pools currently cached.
  [[nodiscard]] std::size_t idle_count() const;

 private:
  std::shared_ptr<PoolLease::State> state_;
};

/// The process-wide registry every ExecContext borrows from.
[[nodiscard]] PoolRegistry& global_pool_registry();

}  // namespace spiral::threading
