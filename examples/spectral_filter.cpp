// Domain example: FFT-based spectral low-pass filtering — the classic
// signal-processing workload motivating fast DFT libraries. A noisy
// multi-tone signal is transformed, high-frequency bins are zeroed, and
// the signal is reconstructed with the inverse plan.
//
//   $ ./spectral_filter [--n=4096] [--threads=2] [--cutoff=0.05]
//
// Uses forward and inverse multicore plans from the public API and
// reports the noise suppression achieved.
#include <cmath>
#include <cstdio>
#include <numbers>

#include "core/spiral_fft.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace spiral;
  util::CliArgs args(argc, argv);
  const idx_t n = args.get_int("n", 4096);
  const int threads = static_cast<int>(args.get_int("threads", 2));
  const double cutoff = args.get_double("cutoff", 0.05);

  // Synthetic signal: two low-frequency tones + white noise.
  util::Rng rng(2026);
  util::cvec clean(n), noisy(n);
  for (idx_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    const double v = std::sin(2 * std::numbers::pi * 5 * t) +
                     0.5 * std::sin(2 * std::numbers::pi * 17 * t);
    clean[size_t(i)] = {v, 0.0};
    noisy[size_t(i)] = {v + 0.4 * rng.uniform(), 0.0};
  }

  core::PlannerOptions fwd_opt;
  fwd_opt.threads = threads;
  core::PlannerOptions inv_opt = fwd_opt;
  inv_opt.direction = +1;
  auto fwd = core::plan_dft(n, fwd_opt);
  auto inv = core::plan_dft(n, inv_opt);
  std::printf("plans: %s / inverse, threads=%d\n",
              fwd->parallel() ? "parallel" : "sequential", threads);

  // Forward transform, zero bins above the cutoff frequency.
  util::cvec spec(n);
  fwd->execute(noisy.data(), spec.data());
  const idx_t keep = std::max<idx_t>(1, static_cast<idx_t>(cutoff * n));
  idx_t zeroed = 0;
  for (idx_t k = keep; k < n - keep; ++k) {
    spec[size_t(k)] = {0.0, 0.0};
    ++zeroed;
  }

  // Inverse transform (unscaled -> divide by n).
  util::cvec filtered(n);
  inv->execute(spec.data(), filtered.data());
  for (auto& v : filtered) v /= static_cast<double>(n);

  auto rms_err = [&](const util::cvec& a) {
    double e = 0.0;
    for (idx_t i = 0; i < n; ++i) {
      e += std::norm(a[size_t(i)] - clean[size_t(i)]);
    }
    return std::sqrt(e / static_cast<double>(n));
  };
  const double before = rms_err(noisy);
  const double after = rms_err(filtered);
  std::printf("zeroed %lld of %lld bins above cutoff %.3f\n",
              static_cast<long long>(zeroed), static_cast<long long>(n),
              cutoff);
  std::printf("RMS error vs clean signal: %.4f -> %.4f (%.1fx reduction)\n",
              before, after, before / after);
  return after < before ? 0 : 1;
}
