// Program generation demo: emit a standalone multithreaded C source file
// implementing DFT_n for a given machine configuration — what Spiral's
// backend produces (Section 3.1, "Generating multithreaded code").
//
//   $ ./codegen_demo [--n=256] [--p=2] [--mu=4]
//                    [--threading=openmp|pthreads|none] [--out=dft.c]
//
// The generated file is self-testing:  cc -O2 -fopenmp dft.c -lm && ./a.out
#include <cstdio>
#include <fstream>

#include "backend/codegen_c.hpp"
#include "backend/lower.hpp"
#include "rewrite/expand.hpp"
#include "rewrite/multicore_fft.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace spiral;
  util::CliArgs args(argc, argv);
  const idx_t n = args.get_int("n", 256);
  const idx_t p = args.get_int("p", 2);
  const idx_t mu = args.get_int("mu", 4);
  const std::string mode = args.get("threading", "openmp");
  const std::string out = args.get("out", "generated_dft.c");

  // Derive, expand, lower, fuse.
  idx_t m = 0;
  for (idx_t cand : rewrite::possible_splits(n)) {
    if (cand % (p * mu) == 0 && (n / cand) % (p * mu) == 0) m = cand;
  }
  spl::FormulaPtr f;
  if (m != 0) {
    f = rewrite::derive_multicore_ct(n, m, p, mu);
    std::printf("generated parallel code from formula (14), split m=%lld\n",
                static_cast<long long>(m));
  } else {
    f = rewrite::formula_from_ruletree(rewrite::balanced_ruletree(n));
    std::printf("size not (p*mu)^2-divisible; generating sequential code\n");
  }
  auto list = backend::lower_fused(rewrite::expand_dfts_balanced(f));

  backend::CodegenOptions opts;
  opts.function_name = "spiral_dft_" + std::to_string(n);
  opts.emit_main = true;
  opts.threading = mode == "openmp"     ? backend::CodegenThreading::kOpenMP
                   : mode == "pthreads" ? backend::CodegenThreading::kPthreads
                                        : backend::CodegenThreading::kNone;
  const std::string src = backend::emit_c(list, opts);

  std::ofstream os(out);
  os << src;
  os.close();

  std::printf("wrote %zu bytes of C to %s\n", src.size(), out.c_str());
  std::printf("stages: %zu; compile with:\n  cc -O2 %s %s -lm && ./a.out\n",
              list.stages.size(),
              mode == "openmp"     ? "-fopenmp"
              : mode == "pthreads" ? "-pthread"
                                   : "",
              out.c_str());

  // Print the head of the generated file as a taste.
  std::printf("\n--- %s (first lines) ---\n", out.c_str());
  std::size_t pos = 0;
  for (int line = 0; line < 12 && pos != std::string::npos; ++line) {
    const auto next = src.find('\n', pos);
    std::printf("%s\n", src.substr(pos, next - pos).c_str());
    pos = next == std::string::npos ? next : next + 1;
  }
  return 0;
}
