// Shows the paper's central mechanism end to end: the rewriting system
// turns the textbook Cooley-Tukey FFT (1) into the multicore FFT (14),
// rule application by rule application (Table 1), and verifies that the
// result is fully optimized in the sense of Definition 1.
//
//   $ ./derivation_demo [--n=64] [--m=8] [--p=2] [--mu=2]
#include <cstdio>

#include "rewrite/breakdown.hpp"
#include "rewrite/multicore_fft.hpp"
#include "spl/printer.hpp"
#include "spl/properties.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace spiral;
  util::CliArgs args(argc, argv);
  const idx_t n = args.get_int("n", 64);
  const idx_t m = args.get_int("m", 8);
  const idx_t p = args.get_int("p", 2);
  const idx_t mu = args.get_int("mu", 2);

  std::printf("Deriving the multicore Cooley-Tukey FFT for DFT_%lld\n",
              static_cast<long long>(n));
  std::printf("(p = %lld processors, cache line mu = %lld complex)\n\n",
              static_cast<long long>(p), static_cast<long long>(mu));

  auto ct = rewrite::cooley_tukey(m, n / m);
  std::printf("start: Cooley-Tukey FFT, paper eq. (1):\n  %s\n\n",
              spl::to_string(ct).c_str());

  rewrite::Trace trace;
  auto result = rewrite::derive_multicore_ct(n, m, p, mu, &trace);

  std::printf("derivation (%zu rule applications):\n", trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    std::printf("  %2zu. %-22s %s\n      -> %s\n", i + 1,
                trace[i].rule_name.c_str(), trace[i].before.c_str(),
                trace[i].after.c_str());
  }

  std::printf("\nresult (paper formula (14)):\n  %s\n\n",
              spl::to_string(result).c_str());

  const auto check = spl::check_fully_optimized(result, p, mu);
  std::printf("Definition 1 (load-balanced, no false sharing): %s\n",
              check.ok ? "SATISFIED" : check.reason.c_str());

  const auto work = spl::work_per_processor(result, p);
  std::printf("arithmetic work per processor:");
  for (double w : work) std::printf(" %.0f", w);
  std::printf("  (imbalance %.3f)\n", spl::load_imbalance(result, p));

  const auto reference = rewrite::multicore_ct_reference(m, n / m, p, mu);
  std::printf("structurally equal to hand-built formula (14): %s\n",
              spl::equal(result, reference) ? "yes" : "NO");
  return check.ok && spl::equal(result, reference) ? 0 : 1;
}
