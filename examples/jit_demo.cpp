// JIT quick-start: plan with PlannerOptions::jit, execute native code.
//
//   $ ./jit_demo [--n=4096] [--threads=2]
//               [--require-jit] [--require-cache-hit]
//
// The first run emits the winning program as C, invokes the system
// compiler and installs the compiled routine as the plan's executor; a
// second run of the same binary finds the shared object in the on-disk
// cache and never launches the compiler. CI runs this twice with a fresh
// SPIRAL_JIT_CACHE_DIR and asserts exactly that with the two flags:
// --require-jit fails the process unless the native executor is active,
// --require-cache-hit additionally fails it if the compiler was invoked.
#include <cstdio>

#include "core/spiral_fft.hpp"
#include "jit/jit.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace spiral;
  util::CliArgs args(argc, argv);
  const idx_t n = args.get_int("n", 1 << 12);
  const int threads = static_cast<int>(args.get_int("threads", 2));

  // 1. Plan with JIT enabled. Everything else is the normal planner
  //    flow; on any compile/cache/load failure the plan silently keeps
  //    the fused interpreter and jit_report() says why.
  core::PlannerOptions opt;
  opt.threads = threads;
  opt.jit = true;
  auto plan = core::plan_dft(n, opt);

  const jit::Report& rep = plan->jit_report();
  std::printf("== jit report ==\n%s\n", rep.to_string().c_str());

  // 2. Execute: the first call crosses the parity gate (native output
  //    checked against the interpreter), later calls are pure native.
  util::Rng rng;
  const auto x = rng.complex_signal(n);
  util::cvec y(x.size());
  const double secs = util::time_min_seconds(
      [&] { plan->execute(x.data(), y.data()); }, 3, 1e-2);
  std::printf("executor: %s\n", plan->jit_active() ? "jit" : "interpreter");
  std::printf("runtime: %.1f us  (%.1f pseudo Mflop/s)\n", secs * 1e6,
              util::pseudo_mflops(n, secs));

  const jit::Stats st = jit::stats();
  std::printf("stats: compiles=%llu cache_hits=%llu loads=%llu\n",
              static_cast<unsigned long long>(st.compiles),
              static_cast<unsigned long long>(st.cache_hits),
              static_cast<unsigned long long>(st.loads));

  if (args.has("require-jit") && !plan->jit_active()) {
    std::fprintf(stderr, "jit_demo: native executor not active: %s\n",
                 rep.to_string().c_str());
    return 1;
  }
  if (args.has("require-cache-hit") && (!rep.cache_hit || st.compiles != 0)) {
    std::fprintf(stderr,
                 "jit_demo: expected a cache hit without compiling "
                 "(cache_hit=%d compiles=%llu)\n",
                 rep.cache_hit ? 1 : 0,
                 static_cast<unsigned long long>(st.compiles));
    return 1;
  }
  return 0;
}
