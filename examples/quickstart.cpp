// Quickstart: plan a DFT for a multicore machine and execute it.
//
//   $ ./quickstart [--n=65536] [--threads=2] [--mu=4]
//
// Demonstrates the three-line user API (plan, execute, inspect) and
// verifies the result against the direct O(n^2) DFT.
#include <cstdio>

#include "baselines/dft_direct.hpp"
#include "core/spiral_fft.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace spiral;
  util::CliArgs args(argc, argv);
  const idx_t n = args.get_int("n", 1 << 10);
  const int threads = static_cast<int>(args.get_int("threads", 2));
  const idx_t mu = args.get_int("mu", 4);

  // 1. Plan: derive the multicore Cooley-Tukey FFT (paper formula (14))
  //    for p = threads processors and cache line length mu.
  core::PlannerOptions opt;
  opt.threads = threads;
  opt.cache_line_complex = mu;
  auto plan = core::plan_dft(n, opt);

  std::printf("== plan ==\n%s\n", plan->describe().c_str());

  // 2. Execute on a random signal.
  util::Rng rng;
  const auto x = rng.complex_signal(n);
  util::cvec y(x.size());
  const double secs = util::time_min_seconds(
      [&] { plan->execute(x.data(), y.data()); }, 3, 1e-2);
  std::printf("runtime: %.1f us  (%.1f pseudo Mflop/s)\n", secs * 1e6,
              util::pseudo_mflops(n, secs));

  // 3. Verify against the O(n^2) reference (on a truncated size if n is
  //    large, to keep the example fast).
  const idx_t check_n = std::min<idx_t>(n, 1 << 12);
  if (check_n == n) {
    const auto ref = baselines::dft_direct(x);
    double err = 0.0;
    for (idx_t i = 0; i < n; ++i) {
      err = std::max(err, std::abs(y[size_t(i)] - ref[size_t(i)]));
    }
    std::printf("max |error| vs direct DFT: %.3e\n", err);
    return err < 1e-6 ? 0 : 1;
  }
  std::printf("(n too large for O(n^2) verification; run with --n<=4096 "
              "to check)\n");
  return 0;
}
