// Wisdom walkthrough: pay for autotuning once, persist the result, and
// rebuild the same plan in a "new process" without searching.
//
//   1. Plan DFT_1024 with autotuning; the cache records a descriptor.
//   2. export_wisdom() -> a small versioned text blob (shown).
//   3. A fresh PlanCache imports the blob and plans the same transform:
//      the DP search is skipped (counter-verified) and the formula is
//      identical.
//   4. One shared plan is executed from several threads, each with its
//      own ExecContext.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/plan_cache.hpp"
#include "search/search.hpp"
#include "util/timer.hpp"

using namespace spiral;

int main() {
  const idx_t n = 1024;
  core::PlannerOptions opt;
  opt.threads = 2;
  opt.cache_line_complex = 2;
  opt.autotune = true;
  opt.leaf = 16;

  // --- 1. autotuned planning (the expensive part) -------------------------
  core::PlanCache first;
  util::Stopwatch w1;
  auto tuned = first.dft(n, opt);
  std::printf("autotuned planning: %.3f ms (%llu DP searches so far)\n",
              w1.seconds() * 1e3,
              static_cast<unsigned long long>(search::dp_search_invocations()));

  // --- 2. export ----------------------------------------------------------
  const std::string blob = first.export_wisdom();
  std::printf("\nexported wisdom (%zu bytes):\n%s\n", blob.size(),
              blob.c_str());

  // --- 3. import into a fresh cache and replan ----------------------------
  core::PlanCache second;
  auto imported = second.import_wisdom(blob);
  if (!imported.ok) {
    std::printf("import failed: %s\n", imported.error.c_str());
    return 1;
  }
  const auto searches_before = search::dp_search_invocations();
  util::Stopwatch w2;
  auto replayed = second.dft(n, opt);
  std::printf("replayed planning: %.3f ms, %llu new DP searches, "
              "%llu wisdom hit(s)\n",
              w2.seconds() * 1e3,
              static_cast<unsigned long long>(search::dp_search_invocations() -
                                              searches_before),
              static_cast<unsigned long long>(second.stats().wisdom_hits));
  std::printf("identical formula: %s\n",
              tuned->describe() == replayed->describe() ? "yes" : "NO");

  // --- 4. one plan, many client threads -----------------------------------
  util::Rng rng(7);
  const auto x = rng.complex_signal(n);
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&] {
      backend::ExecContext ctx;  // per-thread execution state
      util::cvec y(n);
      for (int rep = 0; rep < 100; ++rep) {
        replayed->execute(ctx, x.data(), y.data());
      }
    });
  }
  for (auto& t : clients) t.join();
  std::printf("4 threads x 100 executions through one shared plan: done\n");
  return 0;
}
