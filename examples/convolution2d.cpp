// Domain example: 2D circular convolution via the convolution theorem —
// blur a synthetic "image" with a Gaussian-like kernel using parallel 2D
// DFT plans (forward both operands, multiply spectra, inverse).
//
//   $ ./convolution2d [--rows=64] [--cols=64] [--threads=2]
//
// Verifies the spectral result against direct spatial convolution.
#include <cmath>
#include <cstdio>

#include "core/spiral_fft.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  using namespace spiral;
  util::CliArgs args(argc, argv);
  const idx_t rows = args.get_int("rows", 64);
  const idx_t cols = args.get_int("cols", 64);
  const int threads = static_cast<int>(args.get_int("threads", 2));
  const idx_t n = rows * cols;

  // Synthetic image: a few bright blobs on a noisy background.
  util::Rng rng(42);
  util::cvec img(n), ker(n, cplx{0, 0});
  for (idx_t r = 0; r < rows; ++r) {
    for (idx_t c = 0; c < cols; ++c) {
      double v = 0.05 * rng.uniform(0.0, 1.0);
      if ((r % 16 == 8) && (c % 16 == 8)) v += 1.0;  // blobs
      img[size_t(r * cols + c)] = {v, 0.0};
    }
  }
  // 3x3 blur kernel centred at the origin (circular).
  const double w[3] = {0.25, 0.125, 0.0625};
  for (int dr = -1; dr <= 1; ++dr) {
    for (int dc = -1; dc <= 1; ++dc) {
      const idx_t r = (rows + dr) % rows;
      const idx_t c = (cols + dc) % cols;
      ker[size_t(r * cols + c)] = {w[std::abs(dr) + std::abs(dc)], 0.0};
    }
  }

  core::PlannerOptions fwd;
  fwd.threads = threads;
  core::PlannerOptions inv = fwd;
  inv.direction = +1;
  auto pf = core::plan_dft_2d(rows, cols, fwd);
  auto pi = core::plan_dft_2d(rows, cols, inv);
  std::printf("2D plans (%lldx%lld): %s\n", (long long)rows,
              (long long)cols, pf->parallel() ? "parallel" : "sequential");

  // Convolution theorem: conv = IDFT( DFT(img) .* DFT(ker) ) / n.
  util::cvec fimg(n), fker(n), prod(n), out(n);
  pf->execute(img.data(), fimg.data());
  pf->execute(ker.data(), fker.data());
  for (idx_t i = 0; i < n; ++i) {
    prod[size_t(i)] = fimg[size_t(i)] * fker[size_t(i)];
  }
  pi->execute(prod.data(), out.data());
  for (auto& v : out) v /= static_cast<double>(n);

  // Verify a sample of pixels against direct circular convolution.
  double err = 0.0;
  for (idx_t r = 0; r < rows; r += rows / 8) {
    for (idx_t c = 0; c < cols; c += cols / 8) {
      cplx direct{0, 0};
      for (idx_t kr = 0; kr < rows; ++kr) {
        for (idx_t kc = 0; kc < cols; ++kc) {
          if (std::abs(ker[size_t(kr * cols + kc)]) == 0.0) continue;
          const idx_t sr = (r + rows - kr) % rows;
          const idx_t sc = (c + cols - kc) % cols;
          direct += img[size_t(sr * cols + sc)] *
                    ker[size_t(kr * cols + kc)];
        }
      }
      err = std::max(err, std::abs(direct - out[size_t(r * cols + c)]));
    }
  }
  std::printf("max |spectral - direct| over sampled pixels: %.3e\n", err);
  std::printf("blob peak before/after blur: %.3f -> %.3f (smoothed)\n",
              img[size_t(8 * cols + 8)].real(),
              out[size_t(8 * cols + 8)].real());
  return err < 1e-9 ? 0 : 1;
}
