// Autotuning demo: Spiral's search level (Section 2.3). Runs dynamic
// programming over the Cooley-Tukey ruletree space with the machine
// simulator as the timing oracle and compares the tuned plan against the
// untuned defaults.
//
//   $ ./autotune_demo [--n=4096] [--machine=coreduo]
#include <cstdio>

#include "backend/lower.hpp"
#include "machine/simulator.hpp"
#include "rewrite/breakdown.hpp"
#include "search/cost.hpp"
#include "search/search.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace spiral;
  util::CliArgs args(argc, argv);
  const idx_t n = args.get_int("n", 4096);
  const auto cfg = machine::machine_by_name(args.get("machine", "coreduo"));

  std::printf("Autotuning DFT_%lld for %s (%s)\n",
              static_cast<long long>(n), cfg.name.c_str(),
              cfg.description.c_str());

  auto cost = search::simulated_cost(cfg);
  search::DpSearch dp(cost, 32);
  const auto best = dp.best(n);

  std::printf("\nDP search: %d cost evaluations\n", best.evaluations);
  std::printf("best ruletree: %s\n", rewrite::to_string(best.tree).c_str());
  std::printf("best cost: %.0f simulated cycles\n\n", best.cost);

  const struct {
    const char* name;
    rewrite::RuleTreePtr tree;
  } alternatives[] = {
      {"balanced (sqrt splits)", rewrite::balanced_ruletree(n)},
      {"rightmost radix-32", rewrite::default_ruletree(n)},
      {"radix-2 (textbook)", rewrite::default_ruletree(n, 2)},
  };
  std::printf("%-24s %14s %8s\n", "strategy", "cycles", "vs best");
  std::printf("%-24s %14.0f %8s\n", "dp-tuned", best.cost, "1.00x");
  for (const auto& alt : alternatives) {
    const double c = cost(alt.tree);
    std::printf("%-24s %14.0f %7.2fx\n", alt.name, c, c / best.cost);
  }
  std::printf("\n(The DP result is never worse than the alternatives it\n"
              "subsumes — this is ablation A4 in miniature.)\n");
  return 0;
}
