# Empty dependencies file for convolution2d.
# This may be replaced when dependencies are built.
