file(REMOVE_RECURSE
  "CMakeFiles/convolution2d.dir/convolution2d.cpp.o"
  "CMakeFiles/convolution2d.dir/convolution2d.cpp.o.d"
  "convolution2d"
  "convolution2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convolution2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
