# Empty compiler generated dependencies file for derivation_demo.
# This may be replaced when dependencies are built.
