file(REMOVE_RECURSE
  "CMakeFiles/derivation_demo.dir/derivation_demo.cpp.o"
  "CMakeFiles/derivation_demo.dir/derivation_demo.cpp.o.d"
  "derivation_demo"
  "derivation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derivation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
