file(REMOVE_RECURSE
  "CMakeFiles/codegen_demo.dir/codegen_demo.cpp.o"
  "CMakeFiles/codegen_demo.dir/codegen_demo.cpp.o.d"
  "codegen_demo"
  "codegen_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/codegen_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
