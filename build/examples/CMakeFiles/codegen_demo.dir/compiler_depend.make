# Empty compiler generated dependencies file for codegen_demo.
# This may be replaced when dependencies are built.
