# Empty compiler generated dependencies file for test_dft2d.
# This may be replaced when dependencies are built.
