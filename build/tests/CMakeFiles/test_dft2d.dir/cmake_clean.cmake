file(REMOVE_RECURSE
  "CMakeFiles/test_dft2d.dir/test_dft2d.cpp.o"
  "CMakeFiles/test_dft2d.dir/test_dft2d.cpp.o.d"
  "test_dft2d"
  "test_dft2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dft2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
