# Empty dependencies file for test_rewrite_breakdown.
# This may be replaced when dependencies are built.
