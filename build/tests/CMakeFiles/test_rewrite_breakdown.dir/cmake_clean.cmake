file(REMOVE_RECURSE
  "CMakeFiles/test_rewrite_breakdown.dir/test_rewrite_breakdown.cpp.o"
  "CMakeFiles/test_rewrite_breakdown.dir/test_rewrite_breakdown.cpp.o.d"
  "test_rewrite_breakdown"
  "test_rewrite_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rewrite_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
