# Empty dependencies file for test_evolution.
# This may be replaced when dependencies are built.
