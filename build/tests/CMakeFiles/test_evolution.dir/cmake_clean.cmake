file(REMOVE_RECURSE
  "CMakeFiles/test_evolution.dir/test_evolution.cpp.o"
  "CMakeFiles/test_evolution.dir/test_evolution.cpp.o.d"
  "test_evolution"
  "test_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
