file(REMOVE_RECURSE
  "CMakeFiles/test_codegen_c.dir/test_codegen_c.cpp.o"
  "CMakeFiles/test_codegen_c.dir/test_codegen_c.cpp.o.d"
  "test_codegen_c"
  "test_codegen_c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codegen_c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
