# Empty compiler generated dependencies file for test_codegen_c.
# This may be replaced when dependencies are built.
