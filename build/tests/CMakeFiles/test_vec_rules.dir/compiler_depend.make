# Empty compiler generated dependencies file for test_vec_rules.
# This may be replaced when dependencies are built.
