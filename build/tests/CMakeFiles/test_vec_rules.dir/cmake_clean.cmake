file(REMOVE_RECURSE
  "CMakeFiles/test_vec_rules.dir/test_vec_rules.cpp.o"
  "CMakeFiles/test_vec_rules.dir/test_vec_rules.cpp.o.d"
  "test_vec_rules"
  "test_vec_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vec_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
