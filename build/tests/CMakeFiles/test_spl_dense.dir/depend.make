# Empty dependencies file for test_spl_dense.
# This may be replaced when dependencies are built.
