file(REMOVE_RECURSE
  "CMakeFiles/test_spl_dense.dir/test_spl_dense.cpp.o"
  "CMakeFiles/test_spl_dense.dir/test_spl_dense.cpp.o.d"
  "test_spl_dense"
  "test_spl_dense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spl_dense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
