# Empty dependencies file for test_spl_properties.
# This may be replaced when dependencies are built.
