file(REMOVE_RECURSE
  "CMakeFiles/test_spl_properties.dir/test_spl_properties.cpp.o"
  "CMakeFiles/test_spl_properties.dir/test_spl_properties.cpp.o.d"
  "test_spl_properties"
  "test_spl_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spl_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
