file(REMOVE_RECURSE
  "CMakeFiles/test_plan_cache.dir/test_plan_cache.cpp.o"
  "CMakeFiles/test_plan_cache.dir/test_plan_cache.cpp.o.d"
  "test_plan_cache"
  "test_plan_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plan_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
