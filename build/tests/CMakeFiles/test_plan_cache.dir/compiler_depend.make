# Empty compiler generated dependencies file for test_plan_cache.
# This may be replaced when dependencies are built.
