file(REMOVE_RECURSE
  "CMakeFiles/test_rewrite_multicore.dir/test_rewrite_multicore.cpp.o"
  "CMakeFiles/test_rewrite_multicore.dir/test_rewrite_multicore.cpp.o.d"
  "test_rewrite_multicore"
  "test_rewrite_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rewrite_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
