# Empty compiler generated dependencies file for test_rewrite_multicore.
# This may be replaced when dependencies are built.
