file(REMOVE_RECURSE
  "CMakeFiles/test_machine_simulator.dir/test_machine_simulator.cpp.o"
  "CMakeFiles/test_machine_simulator.dir/test_machine_simulator.cpp.o.d"
  "test_machine_simulator"
  "test_machine_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
