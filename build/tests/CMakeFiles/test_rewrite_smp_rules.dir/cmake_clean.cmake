file(REMOVE_RECURSE
  "CMakeFiles/test_rewrite_smp_rules.dir/test_rewrite_smp_rules.cpp.o"
  "CMakeFiles/test_rewrite_smp_rules.dir/test_rewrite_smp_rules.cpp.o.d"
  "test_rewrite_smp_rules"
  "test_rewrite_smp_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rewrite_smp_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
