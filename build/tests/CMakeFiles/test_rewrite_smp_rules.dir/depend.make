# Empty dependencies file for test_rewrite_smp_rules.
# This may be replaced when dependencies are built.
