# Empty compiler generated dependencies file for test_vectorize.
# This may be replaced when dependencies are built.
