file(REMOVE_RECURSE
  "CMakeFiles/test_vectorize.dir/test_vectorize.cpp.o"
  "CMakeFiles/test_vectorize.dir/test_vectorize.cpp.o.d"
  "test_vectorize"
  "test_vectorize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vectorize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
