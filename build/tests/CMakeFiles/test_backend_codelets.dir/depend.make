# Empty dependencies file for test_backend_codelets.
# This may be replaced when dependencies are built.
