file(REMOVE_RECURSE
  "CMakeFiles/test_backend_codelets.dir/test_backend_codelets.cpp.o"
  "CMakeFiles/test_backend_codelets.dir/test_backend_codelets.cpp.o.d"
  "test_backend_codelets"
  "test_backend_codelets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend_codelets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
