file(REMOVE_RECURSE
  "CMakeFiles/test_backend_lower.dir/test_backend_lower.cpp.o"
  "CMakeFiles/test_backend_lower.dir/test_backend_lower.cpp.o.d"
  "test_backend_lower"
  "test_backend_lower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
