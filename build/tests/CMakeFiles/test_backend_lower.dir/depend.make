# Empty dependencies file for test_backend_lower.
# This may be replaced when dependencies are built.
