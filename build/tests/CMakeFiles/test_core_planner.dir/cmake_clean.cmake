file(REMOVE_RECURSE
  "CMakeFiles/test_core_planner.dir/test_core_planner.cpp.o"
  "CMakeFiles/test_core_planner.dir/test_core_planner.cpp.o.d"
  "test_core_planner"
  "test_core_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
