# Empty dependencies file for test_spl_formula.
# This may be replaced when dependencies are built.
