file(REMOVE_RECURSE
  "CMakeFiles/test_spl_formula.dir/test_spl_formula.cpp.o"
  "CMakeFiles/test_spl_formula.dir/test_spl_formula.cpp.o.d"
  "test_spl_formula"
  "test_spl_formula.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_spl_formula.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
