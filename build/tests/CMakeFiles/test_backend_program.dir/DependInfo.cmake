
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_backend_program.cpp" "tests/CMakeFiles/test_backend_program.dir/test_backend_program.cpp.o" "gcc" "tests/CMakeFiles/test_backend_program.dir/test_backend_program.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/spiral_core.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/spiral_search.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/spiral_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/spiral_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/spiral_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/spiral_threading.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/spiral_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/spl/CMakeFiles/spiral_spl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
