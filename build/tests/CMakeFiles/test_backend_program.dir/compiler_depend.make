# Empty compiler generated dependencies file for test_backend_program.
# This may be replaced when dependencies are built.
