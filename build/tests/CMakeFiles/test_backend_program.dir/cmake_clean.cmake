file(REMOVE_RECURSE
  "CMakeFiles/test_backend_program.dir/test_backend_program.cpp.o"
  "CMakeFiles/test_backend_program.dir/test_backend_program.cpp.o.d"
  "test_backend_program"
  "test_backend_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
