# Empty dependencies file for test_machine_cache.
# This may be replaced when dependencies are built.
