file(REMOVE_RECURSE
  "CMakeFiles/test_machine_cache.dir/test_machine_cache.cpp.o"
  "CMakeFiles/test_machine_cache.dir/test_machine_cache.cpp.o.d"
  "test_machine_cache"
  "test_machine_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machine_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
