# Empty compiler generated dependencies file for test_rewrite_engine.
# This may be replaced when dependencies are built.
