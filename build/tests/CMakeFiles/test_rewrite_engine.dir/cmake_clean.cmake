file(REMOVE_RECURSE
  "CMakeFiles/test_rewrite_engine.dir/test_rewrite_engine.cpp.o"
  "CMakeFiles/test_rewrite_engine.dir/test_rewrite_engine.cpp.o.d"
  "test_rewrite_engine"
  "test_rewrite_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rewrite_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
