# Empty dependencies file for spiral_threading.
# This may be replaced when dependencies are built.
