file(REMOVE_RECURSE
  "libspiral_threading.a"
)
