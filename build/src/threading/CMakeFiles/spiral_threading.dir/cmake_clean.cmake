file(REMOVE_RECURSE
  "CMakeFiles/spiral_threading.dir/thread_pool.cpp.o"
  "CMakeFiles/spiral_threading.dir/thread_pool.cpp.o.d"
  "libspiral_threading.a"
  "libspiral_threading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spiral_threading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
