file(REMOVE_RECURSE
  "libspiral_core.a"
)
