# Empty dependencies file for spiral_core.
# This may be replaced when dependencies are built.
