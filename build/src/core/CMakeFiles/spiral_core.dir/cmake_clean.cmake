file(REMOVE_RECURSE
  "CMakeFiles/spiral_core.dir/plan_cache.cpp.o"
  "CMakeFiles/spiral_core.dir/plan_cache.cpp.o.d"
  "CMakeFiles/spiral_core.dir/spiral_fft.cpp.o"
  "CMakeFiles/spiral_core.dir/spiral_fft.cpp.o.d"
  "libspiral_core.a"
  "libspiral_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spiral_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
