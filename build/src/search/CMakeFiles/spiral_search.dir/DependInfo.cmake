
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/search/cost.cpp" "src/search/CMakeFiles/spiral_search.dir/cost.cpp.o" "gcc" "src/search/CMakeFiles/spiral_search.dir/cost.cpp.o.d"
  "/root/repo/src/search/evolution.cpp" "src/search/CMakeFiles/spiral_search.dir/evolution.cpp.o" "gcc" "src/search/CMakeFiles/spiral_search.dir/evolution.cpp.o.d"
  "/root/repo/src/search/search.cpp" "src/search/CMakeFiles/spiral_search.dir/search.cpp.o" "gcc" "src/search/CMakeFiles/spiral_search.dir/search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/spiral_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/spiral_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/spiral_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/spl/CMakeFiles/spiral_spl.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/spiral_threading.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
