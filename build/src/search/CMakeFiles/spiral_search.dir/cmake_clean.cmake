file(REMOVE_RECURSE
  "CMakeFiles/spiral_search.dir/cost.cpp.o"
  "CMakeFiles/spiral_search.dir/cost.cpp.o.d"
  "CMakeFiles/spiral_search.dir/evolution.cpp.o"
  "CMakeFiles/spiral_search.dir/evolution.cpp.o.d"
  "CMakeFiles/spiral_search.dir/search.cpp.o"
  "CMakeFiles/spiral_search.dir/search.cpp.o.d"
  "libspiral_search.a"
  "libspiral_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spiral_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
