file(REMOVE_RECURSE
  "libspiral_search.a"
)
