# Empty dependencies file for spiral_search.
# This may be replaced when dependencies are built.
