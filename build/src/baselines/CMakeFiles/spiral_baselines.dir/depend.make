# Empty dependencies file for spiral_baselines.
# This may be replaced when dependencies are built.
