file(REMOVE_RECURSE
  "CMakeFiles/spiral_baselines.dir/dft_direct.cpp.o"
  "CMakeFiles/spiral_baselines.dir/dft_direct.cpp.o.d"
  "CMakeFiles/spiral_baselines.dir/fft_iterative.cpp.o"
  "CMakeFiles/spiral_baselines.dir/fft_iterative.cpp.o.d"
  "CMakeFiles/spiral_baselines.dir/fftw_like.cpp.o"
  "CMakeFiles/spiral_baselines.dir/fftw_like.cpp.o.d"
  "CMakeFiles/spiral_baselines.dir/sixstep.cpp.o"
  "CMakeFiles/spiral_baselines.dir/sixstep.cpp.o.d"
  "libspiral_baselines.a"
  "libspiral_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spiral_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
