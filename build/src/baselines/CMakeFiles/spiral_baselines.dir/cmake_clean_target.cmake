file(REMOVE_RECURSE
  "libspiral_baselines.a"
)
