
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dft_direct.cpp" "src/baselines/CMakeFiles/spiral_baselines.dir/dft_direct.cpp.o" "gcc" "src/baselines/CMakeFiles/spiral_baselines.dir/dft_direct.cpp.o.d"
  "/root/repo/src/baselines/fft_iterative.cpp" "src/baselines/CMakeFiles/spiral_baselines.dir/fft_iterative.cpp.o" "gcc" "src/baselines/CMakeFiles/spiral_baselines.dir/fft_iterative.cpp.o.d"
  "/root/repo/src/baselines/fftw_like.cpp" "src/baselines/CMakeFiles/spiral_baselines.dir/fftw_like.cpp.o" "gcc" "src/baselines/CMakeFiles/spiral_baselines.dir/fftw_like.cpp.o.d"
  "/root/repo/src/baselines/sixstep.cpp" "src/baselines/CMakeFiles/spiral_baselines.dir/sixstep.cpp.o" "gcc" "src/baselines/CMakeFiles/spiral_baselines.dir/sixstep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/backend/CMakeFiles/spiral_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/spiral_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/spl/CMakeFiles/spiral_spl.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/spiral_threading.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
