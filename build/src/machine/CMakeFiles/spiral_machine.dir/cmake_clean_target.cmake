file(REMOVE_RECURSE
  "libspiral_machine.a"
)
