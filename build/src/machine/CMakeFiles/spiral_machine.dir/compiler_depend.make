# Empty compiler generated dependencies file for spiral_machine.
# This may be replaced when dependencies are built.
