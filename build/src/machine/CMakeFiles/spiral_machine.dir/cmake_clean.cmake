file(REMOVE_RECURSE
  "CMakeFiles/spiral_machine.dir/cache.cpp.o"
  "CMakeFiles/spiral_machine.dir/cache.cpp.o.d"
  "CMakeFiles/spiral_machine.dir/config.cpp.o"
  "CMakeFiles/spiral_machine.dir/config.cpp.o.d"
  "CMakeFiles/spiral_machine.dir/simulator.cpp.o"
  "CMakeFiles/spiral_machine.dir/simulator.cpp.o.d"
  "libspiral_machine.a"
  "libspiral_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spiral_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
