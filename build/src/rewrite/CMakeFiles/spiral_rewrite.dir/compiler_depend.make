# Empty compiler generated dependencies file for spiral_rewrite.
# This may be replaced when dependencies are built.
