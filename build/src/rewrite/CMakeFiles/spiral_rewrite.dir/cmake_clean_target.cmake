file(REMOVE_RECURSE
  "libspiral_rewrite.a"
)
