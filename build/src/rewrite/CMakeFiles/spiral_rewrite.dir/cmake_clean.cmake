file(REMOVE_RECURSE
  "CMakeFiles/spiral_rewrite.dir/breakdown.cpp.o"
  "CMakeFiles/spiral_rewrite.dir/breakdown.cpp.o.d"
  "CMakeFiles/spiral_rewrite.dir/engine.cpp.o"
  "CMakeFiles/spiral_rewrite.dir/engine.cpp.o.d"
  "CMakeFiles/spiral_rewrite.dir/expand.cpp.o"
  "CMakeFiles/spiral_rewrite.dir/expand.cpp.o.d"
  "CMakeFiles/spiral_rewrite.dir/multicore_fft.cpp.o"
  "CMakeFiles/spiral_rewrite.dir/multicore_fft.cpp.o.d"
  "CMakeFiles/spiral_rewrite.dir/simplify.cpp.o"
  "CMakeFiles/spiral_rewrite.dir/simplify.cpp.o.d"
  "CMakeFiles/spiral_rewrite.dir/smp_rules.cpp.o"
  "CMakeFiles/spiral_rewrite.dir/smp_rules.cpp.o.d"
  "CMakeFiles/spiral_rewrite.dir/vec_rules.cpp.o"
  "CMakeFiles/spiral_rewrite.dir/vec_rules.cpp.o.d"
  "libspiral_rewrite.a"
  "libspiral_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spiral_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
