
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rewrite/breakdown.cpp" "src/rewrite/CMakeFiles/spiral_rewrite.dir/breakdown.cpp.o" "gcc" "src/rewrite/CMakeFiles/spiral_rewrite.dir/breakdown.cpp.o.d"
  "/root/repo/src/rewrite/engine.cpp" "src/rewrite/CMakeFiles/spiral_rewrite.dir/engine.cpp.o" "gcc" "src/rewrite/CMakeFiles/spiral_rewrite.dir/engine.cpp.o.d"
  "/root/repo/src/rewrite/expand.cpp" "src/rewrite/CMakeFiles/spiral_rewrite.dir/expand.cpp.o" "gcc" "src/rewrite/CMakeFiles/spiral_rewrite.dir/expand.cpp.o.d"
  "/root/repo/src/rewrite/multicore_fft.cpp" "src/rewrite/CMakeFiles/spiral_rewrite.dir/multicore_fft.cpp.o" "gcc" "src/rewrite/CMakeFiles/spiral_rewrite.dir/multicore_fft.cpp.o.d"
  "/root/repo/src/rewrite/simplify.cpp" "src/rewrite/CMakeFiles/spiral_rewrite.dir/simplify.cpp.o" "gcc" "src/rewrite/CMakeFiles/spiral_rewrite.dir/simplify.cpp.o.d"
  "/root/repo/src/rewrite/smp_rules.cpp" "src/rewrite/CMakeFiles/spiral_rewrite.dir/smp_rules.cpp.o" "gcc" "src/rewrite/CMakeFiles/spiral_rewrite.dir/smp_rules.cpp.o.d"
  "/root/repo/src/rewrite/vec_rules.cpp" "src/rewrite/CMakeFiles/spiral_rewrite.dir/vec_rules.cpp.o" "gcc" "src/rewrite/CMakeFiles/spiral_rewrite.dir/vec_rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spl/CMakeFiles/spiral_spl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
