file(REMOVE_RECURSE
  "libspiral_backend.a"
)
