file(REMOVE_RECURSE
  "CMakeFiles/spiral_backend.dir/codegen_c.cpp.o"
  "CMakeFiles/spiral_backend.dir/codegen_c.cpp.o.d"
  "CMakeFiles/spiral_backend.dir/codelets.cpp.o"
  "CMakeFiles/spiral_backend.dir/codelets.cpp.o.d"
  "CMakeFiles/spiral_backend.dir/fuse.cpp.o"
  "CMakeFiles/spiral_backend.dir/fuse.cpp.o.d"
  "CMakeFiles/spiral_backend.dir/lower.cpp.o"
  "CMakeFiles/spiral_backend.dir/lower.cpp.o.d"
  "CMakeFiles/spiral_backend.dir/program.cpp.o"
  "CMakeFiles/spiral_backend.dir/program.cpp.o.d"
  "CMakeFiles/spiral_backend.dir/stage.cpp.o"
  "CMakeFiles/spiral_backend.dir/stage.cpp.o.d"
  "CMakeFiles/spiral_backend.dir/vectorize.cpp.o"
  "CMakeFiles/spiral_backend.dir/vectorize.cpp.o.d"
  "libspiral_backend.a"
  "libspiral_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spiral_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
