
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backend/codegen_c.cpp" "src/backend/CMakeFiles/spiral_backend.dir/codegen_c.cpp.o" "gcc" "src/backend/CMakeFiles/spiral_backend.dir/codegen_c.cpp.o.d"
  "/root/repo/src/backend/codelets.cpp" "src/backend/CMakeFiles/spiral_backend.dir/codelets.cpp.o" "gcc" "src/backend/CMakeFiles/spiral_backend.dir/codelets.cpp.o.d"
  "/root/repo/src/backend/fuse.cpp" "src/backend/CMakeFiles/spiral_backend.dir/fuse.cpp.o" "gcc" "src/backend/CMakeFiles/spiral_backend.dir/fuse.cpp.o.d"
  "/root/repo/src/backend/lower.cpp" "src/backend/CMakeFiles/spiral_backend.dir/lower.cpp.o" "gcc" "src/backend/CMakeFiles/spiral_backend.dir/lower.cpp.o.d"
  "/root/repo/src/backend/program.cpp" "src/backend/CMakeFiles/spiral_backend.dir/program.cpp.o" "gcc" "src/backend/CMakeFiles/spiral_backend.dir/program.cpp.o.d"
  "/root/repo/src/backend/stage.cpp" "src/backend/CMakeFiles/spiral_backend.dir/stage.cpp.o" "gcc" "src/backend/CMakeFiles/spiral_backend.dir/stage.cpp.o.d"
  "/root/repo/src/backend/vectorize.cpp" "src/backend/CMakeFiles/spiral_backend.dir/vectorize.cpp.o" "gcc" "src/backend/CMakeFiles/spiral_backend.dir/vectorize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rewrite/CMakeFiles/spiral_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/spl/CMakeFiles/spiral_spl.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/spiral_threading.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
