# Empty dependencies file for spiral_backend.
# This may be replaced when dependencies are built.
