
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spl/dense.cpp" "src/spl/CMakeFiles/spiral_spl.dir/dense.cpp.o" "gcc" "src/spl/CMakeFiles/spiral_spl.dir/dense.cpp.o.d"
  "/root/repo/src/spl/formula.cpp" "src/spl/CMakeFiles/spiral_spl.dir/formula.cpp.o" "gcc" "src/spl/CMakeFiles/spiral_spl.dir/formula.cpp.o.d"
  "/root/repo/src/spl/printer.cpp" "src/spl/CMakeFiles/spiral_spl.dir/printer.cpp.o" "gcc" "src/spl/CMakeFiles/spiral_spl.dir/printer.cpp.o.d"
  "/root/repo/src/spl/properties.cpp" "src/spl/CMakeFiles/spiral_spl.dir/properties.cpp.o" "gcc" "src/spl/CMakeFiles/spiral_spl.dir/properties.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
