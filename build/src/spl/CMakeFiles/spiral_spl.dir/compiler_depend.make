# Empty compiler generated dependencies file for spiral_spl.
# This may be replaced when dependencies are built.
