file(REMOVE_RECURSE
  "libspiral_spl.a"
)
