file(REMOVE_RECURSE
  "CMakeFiles/spiral_spl.dir/dense.cpp.o"
  "CMakeFiles/spiral_spl.dir/dense.cpp.o.d"
  "CMakeFiles/spiral_spl.dir/formula.cpp.o"
  "CMakeFiles/spiral_spl.dir/formula.cpp.o.d"
  "CMakeFiles/spiral_spl.dir/printer.cpp.o"
  "CMakeFiles/spiral_spl.dir/printer.cpp.o.d"
  "CMakeFiles/spiral_spl.dir/properties.cpp.o"
  "CMakeFiles/spiral_spl.dir/properties.cpp.o.d"
  "libspiral_spl.a"
  "libspiral_spl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spiral_spl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
