file(REMOVE_RECURSE
  "CMakeFiles/bench_barriers.dir/bench_barriers.cpp.o"
  "CMakeFiles/bench_barriers.dir/bench_barriers.cpp.o.d"
  "bench_barriers"
  "bench_barriers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_barriers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
