# Empty compiler generated dependencies file for bench_barriers.
# This may be replaced when dependencies are built.
