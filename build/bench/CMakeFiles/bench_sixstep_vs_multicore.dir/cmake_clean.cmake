file(REMOVE_RECURSE
  "CMakeFiles/bench_sixstep_vs_multicore.dir/bench_sixstep_vs_multicore.cpp.o"
  "CMakeFiles/bench_sixstep_vs_multicore.dir/bench_sixstep_vs_multicore.cpp.o.d"
  "bench_sixstep_vs_multicore"
  "bench_sixstep_vs_multicore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sixstep_vs_multicore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
