# Empty dependencies file for bench_sixstep_vs_multicore.
# This may be replaced when dependencies are built.
