file(REMOVE_RECURSE
  "CMakeFiles/bench_vectorization.dir/bench_vectorization.cpp.o"
  "CMakeFiles/bench_vectorization.dir/bench_vectorization.cpp.o.d"
  "bench_vectorization"
  "bench_vectorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vectorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
