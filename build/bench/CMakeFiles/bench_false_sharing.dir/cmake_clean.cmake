file(REMOVE_RECURSE
  "CMakeFiles/bench_false_sharing.dir/bench_false_sharing.cpp.o"
  "CMakeFiles/bench_false_sharing.dir/bench_false_sharing.cpp.o.d"
  "bench_false_sharing"
  "bench_false_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_false_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
